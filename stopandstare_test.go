package stopandstare

import (
	"math"
	"strings"
	"testing"
)

func testGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := GeneratePowerLaw(2000, 12000, 2.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMaximizeAllAlgorithms(t *testing.T) {
	g := testGraph(t)
	small, err := GeneratePowerLaw(150, 800, 2.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		target := g
		opt := Options{K: 10, Epsilon: 0.2, Seed: 7, Workers: 2}
		if algo == CELF || algo == CELFPlusPlus {
			target = small // MC greedy needs a small instance
			opt.MCRuns = 300
		}
		if algo == Borgs {
			// The analysis constant 48 generates tens of millions of RR
			// sets even here — the paper's point about SODA'14 RIS.
			opt.BorgsC = 0.01
		}
		res, err := Maximize(target, LT, algo, opt)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Seeds) != 10 {
			t.Fatalf("%s: %d seeds", algo, len(res.Seeds))
		}
		seen := map[uint32]bool{}
		for _, s := range res.Seeds {
			if int(s) >= target.NumNodes() || seen[s] {
				t.Fatalf("%s: invalid/duplicate seed %d", algo, s)
			}
			seen[s] = true
		}
	}
}

func TestMaximizeErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Maximize(nil, LT, DSSA, Options{K: 1}); err == nil {
		t.Fatal("nil graph should fail")
	}
	if _, err := Maximize(g, LT, Algorithm("bogus"), Options{K: 1}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := Maximize(g, LT, DSSA, Options{K: 0}); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestDSSAQualityVsDegreeBaseline(t *testing.T) {
	g := testGraph(t)
	k := 20
	dssa, err := Maximize(g, IC, DSSA, Options{K: k, Epsilon: 0.1, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Maximize(g, IC, Degree, Options{K: k, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sd, _, err := EvaluateSpread(g, IC, dssa.Seeds, 10000, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	sg, _, err := EvaluateSpread(g, IC, deg.Seeds, 10000, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sd < 0.95*sg {
		t.Fatalf("D-SSA spread %.1f clearly below degree heuristic %.1f", sd, sg)
	}
}

func TestMaximizeTargetedEndToEnd(t *testing.T) {
	g := testGraph(t)
	topics, err := GenerateTopics(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 2 {
		t.Fatalf("want 2 topics, got %d", len(topics))
	}
	tp := topics[0]
	for _, algo := range []Algorithm{DSSA, SSA, TIMPlus} {
		res, err := MaximizeTargeted(g, LT, tp.Weights, algo, Options{K: 10, Epsilon: 0.2, Seed: 19, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Seeds) != 10 || res.BenefitEstimate <= 0 || res.BenefitEstimate > res.Gamma {
			t.Fatalf("%s: degenerate TVM result %+v", algo, res)
		}
	}
	if _, err := MaximizeTargeted(g, LT, tp.Weights, Degree, Options{K: 10}); err == nil ||
		!strings.Contains(err.Error(), "does not support TVM") {
		t.Fatalf("degree TVM should be rejected, got %v", err)
	}
	benefit, se, err := EvaluateBenefit(g, LT, tp.Weights, []uint32{0, 1, 2}, 2000, 23, 2)
	if err != nil {
		t.Fatal(err)
	}
	if benefit < 0 || math.IsNaN(se) {
		t.Fatalf("EvaluateBenefit %v ± %v", benefit, se)
	}
}

func TestGraphAPIRoundTrip(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	b.AddUndirected(2, 3, 0.25)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	g2, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}},
		BuildOptions{Model: WeightedCascade})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g2.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("WC weight %v", w)
	}
	if _, err := LoadGraph(strings.NewReader("0 1 0.5\n1 2 0.5\n"), LoadGraphOptions{Directed: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetNamesExposed(t *testing.T) {
	names := PresetNames()
	if len(names) != 8 {
		t.Fatalf("want 8 presets, got %d", len(names))
	}
	if names[0] != "nethept" {
		t.Fatalf("first preset %q", names[0])
	}
}

func TestGeneratorsExposed(t *testing.T) {
	if _, err := GenerateErdosRenyi(100, 400, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateBarabasiAlbert(100, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g, err := GeneratePreset("nethept", 0.05, 1); err != nil || g.NumNodes() == 0 {
		t.Fatalf("preset: %v", err)
	}
	if _, err := GeneratePreset("bogus", 0.5, 1); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestParseModelExposed(t *testing.T) {
	m, err := ParseModel("IC")
	if err != nil || m != IC {
		t.Fatalf("ParseModel: %v %v", m, err)
	}
}

func TestDeterministicFacade(t *testing.T) {
	g := testGraph(t)
	a, err := Maximize(g, LT, DSSA, Options{K: 5, Epsilon: 0.2, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Maximize(g, LT, DSSA, Options{K: 5, Epsilon: 0.2, Seed: 99, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("facade results differ across worker counts")
		}
	}
}

func TestKernelFacade(t *testing.T) {
	// Both sampling kernels must run end-to-end through the public API,
	// each deterministic across worker counts, each returning a sane
	// estimate on the same instance. Sets differ per kernel (different
	// draw sequences), so the influence estimates agree only statistically.
	g := testGraph(t)
	est := map[Kernel]float64{}
	for _, kernel := range []Kernel{KernelPlan, KernelOracle} {
		a, err := Maximize(g, IC, DSSA, Options{K: 8, Epsilon: 0.2, Seed: 21, Workers: 1, Kernel: kernel})
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		b, err := Maximize(g, IC, DSSA, Options{K: 8, Epsilon: 0.2, Seed: 21, Workers: 3, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("kernel %v: results differ across worker counts", kernel)
			}
		}
		if len(a.Seeds) != 8 || a.InfluenceEstimate <= 0 {
			t.Fatalf("kernel %v: degenerate result %+v", kernel, a)
		}
		est[kernel] = a.InfluenceEstimate
	}
	// ε = 0.2 runs on the same instance: the two kernels' estimates of the
	// same OPT must land in the same ballpark (generous 2ε relative gap).
	lo, hi := est[KernelPlan], est[KernelOracle]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo > 0.4*hi {
		t.Fatalf("kernel estimates diverge: plan %.1f vs oracle %.1f", est[KernelPlan], est[KernelOracle])
	}
	if _, err := ParseKernel("oracle"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKernel("nope"); err == nil {
		t.Fatal("bad kernel name should fail")
	}
}

func TestMaximizeBudgetedFacade(t *testing.T) {
	g := testGraph(t)
	topics, err := GenerateTopics(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = float64(v%3) + 1
	}
	res, err := MaximizeBudgeted(g, LT, topics[0].Weights, BudgetedOptions{
		Budget: 15, Costs: costs, Epsilon: 0.3, Seed: 5, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 15+1e-9 || len(res.Seeds) == 0 || res.BenefitEstimate <= 0 {
		t.Fatalf("budgeted facade degenerate: %+v", res)
	}
	if _, err := MaximizeBudgeted(g, LT, topics[0].Weights, BudgetedOptions{Budget: -1}); err == nil {
		t.Fatal("negative budget should fail")
	}
}

func TestBorgsFacade(t *testing.T) {
	g, err := GeneratePowerLaw(500, 3000, 2.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Maximize(g, IC, Borgs, Options{K: 5, Epsilon: 0.3, Seed: 3, Workers: 2, BorgsC: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 || res.Samples <= 0 {
		t.Fatalf("borgs facade degenerate: %+v", res)
	}
}

func TestCertifySpreadFacade(t *testing.T) {
	g := testGraph(t)
	res, err := Maximize(g, IC, DSSA, Options{K: 5, Epsilon: 0.2, Seed: 21, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifySpread(g, IC, res.Seeds, 0.1, 0.01, 23)
	if err != nil {
		t.Fatal(err)
	}
	mc, se, err := EvaluateSpread(g, IC, res.Seeds, 20000, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cert.Influence-mc) > 0.12*mc+5*se {
		t.Fatalf("certificate %.2f vs MC %.2f±%.2f", cert.Influence, mc, se)
	}
	if _, err := CertifySpread(g, IC, nil, 0.1, 0.01, 1); err == nil {
		t.Fatal("empty seeds should fail")
	}
}

func TestRecommendedEpsilonSplitFacade(t *testing.T) {
	e1, e2, e3, ok := RecommendedEpsilonSplit(0.1, 59000)
	if !ok || e1 <= 0 || e2 <= 0 || e3 <= 0 {
		t.Fatalf("split failed: %v %v %v %v", e1, e2, e3, ok)
	}
	g := testGraph(t)
	res, err := Maximize(g, LT, SSA, Options{K: 5, Epsilon: 0.1, Seed: 31,
		Workers: 2, Eps1: e1, Eps2: e2, Eps3: e3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	if _, _, _, ok := RecommendedEpsilonSplit(0.9, 100); ok {
		t.Fatal("eps=0.9 should be rejected")
	}
}

func TestOnCheckpointFacade(t *testing.T) {
	g := testGraph(t)
	var count int
	res, err := Maximize(g, LT, DSSA, Options{K: 5, Epsilon: 0.2, Seed: 7, Workers: 2,
		OnCheckpoint: func(c Checkpoint) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Iterations || count == 0 {
		t.Fatalf("checkpoints %d, iterations %d", count, res.Iterations)
	}
}
