package stopandstare_test

import (
	"fmt"
	"slices"
	"sync"
	"testing"

	"stopandstare"
)

// TestSessionConcurrentQueries hammers one Session with a mixed concurrent
// workload — read-only repeats that share the read lock, ε-tightened and
// larger-k queries that grow the store mid-flight, SSA and D-SSA
// interleaved, duplicate queries racing on the same per-k solver, and
// Stats snapshots — and then checks every query still returned exactly its
// cold-run result. CI runs the whole test step under -race, so this is
// both the locking-discipline proof and a determinism-under-concurrency
// proof: if growth, solver reuse or coverage scratch ever leaked across
// queries, some replica would drift from its cold twin.
func TestSessionConcurrentQueries(t *testing.T) {
	g, err := stopandstare.GeneratePowerLaw(400, 2400, 2.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	sess, err := stopandstare.NewSession(g, stopandstare.IC, stopandstare.SessionOptions{
		Seed: seed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm a prefix so part of the workload is read-only from the start.
	if _, err := sess.Maximize(stopandstare.Query{K: 6, Epsilon: 0.35}); err != nil {
		t.Fatal(err)
	}

	// Job 0 is an exact repeat of the warm-up: it can never grow the store,
	// so every replica must report Warm even while other jobs grow it.
	jobs := []sessionQuery{
		{stopandstare.DSSA, 6, 0.35}, // exact repeat: read-only
		{stopandstare.DSSA, 6, 0.25}, // same k, tighter ε: grows the store
		{stopandstare.DSSA, 9, 0.3},  // new k: new solver, likely read-only
		{stopandstare.SSA, 4, 0.3},   // SSA shares the same stream
		{stopandstare.SSA, 6, 0.35},  // SSA racing DSSA on the k=6 solver
		{stopandstare.DSSA, 2, 0.4},  // small query riding along
	}
	const replicas = 3 // duplicates race on the same per-k solver
	results := make([][]*stopandstare.Result, len(jobs))
	for i := range results {
		results[i] = make([]*stopandstare.Result, replicas)
	}

	var wg sync.WaitGroup
	for ji, q := range jobs {
		for rep := 0; rep < replicas; rep++ {
			wg.Add(1)
			go func(ji, rep int, q sessionQuery) {
				defer wg.Done()
				res, err := sess.Maximize(stopandstare.Query{Algorithm: q.algo, K: q.k, Epsilon: q.eps})
				if err != nil {
					t.Errorf("job %d rep %d: %v", ji, rep, err)
					return
				}
				results[ji][rep] = res
			}(ji, rep, q)
		}
	}
	// Stats must be safe concurrently with queries and growth.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				st := sess.Stats()
				if st.Samples < 0 || st.StoreBytes < 0 {
					t.Errorf("stats snapshot corrupt: %+v", st)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for ji, q := range jobs {
		ctx := fmt.Sprintf("job %d (%s k=%d eps=%v)", ji, q.algo, q.k, q.eps)
		cold, err := stopandstare.Maximize(g, stopandstare.IC, q.algo, stopandstare.Options{
			K: q.k, Epsilon: q.eps, Seed: seed, Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: cold: %v", ctx, err)
		}
		for rep, res := range results[ji] {
			if !slices.Equal(res.Seeds, cold.Seeds) || res.Samples != cold.Samples ||
				res.InfluenceEstimate != cold.InfluenceEstimate {
				t.Fatalf("%s rep %d: %v/%d/%v differs from cold %v/%d/%v", ctx, rep,
					res.Seeds, res.Samples, res.InfluenceEstimate,
					cold.Seeds, cold.Samples, cold.InfluenceEstimate)
			}
			if ji == 0 && !res.Warm {
				t.Fatalf("%s rep %d: exact-repeat query reported Warm=false", ctx, rep)
			}
		}
	}

	if st := sess.Stats(); st.Queries != int64(1+len(jobs)*replicas) {
		t.Fatalf("queries counter %d, want %d", st.Queries, 1+len(jobs)*replicas)
	}
}
